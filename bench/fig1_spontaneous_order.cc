// Reproduces **Figure 1** of the paper: "Spontaneous total order in a 4-site
// system" - the percentage of spontaneously ordered messages vs. the interval
// between two consecutive broadcasts on each site (0..5 ms), on a 4-site
// 10 Mbit/s Ethernet segment with IP multicast.
//
// Paper anchors: ~82 % at interval 0 (saturated bus), ~99 % at 4 ms,
// monotonically increasing and convex in between.
//
// Two series are produced:
//   BM_Fig1_SpontaneousOrder - the raw network-level metric (the figure);
//   BM_Fig1_OptAbcastFastPath - the protocol-level consequence: the fraction
//     of OPT-ABcast ordering stages decided via the identical-proposal fast
//     path under the same traffic (what the paper's Section 2.1 tradeoff is
//     about).
//
// Counters: pct_same_position (the figure's y-axis), pct_pair_agreement,
// fast_path_pct, interval_ms.
#include <benchmark/benchmark.h>

#include <memory>

#include "abcast/opt_abcast.h"
#include "bench_common.h"
#include "net/spontaneous_order.h"

namespace otpdb::bench {
namespace {

struct BlankPayload final : Payload {};

constexpr std::size_t kSites = 4;
constexpr int kMessagesPerSite = 400;

/// Per-site send interval for the sweep point; the paper's "0" means
/// "as fast as the bus allows", which for 128-byte frames on 10 Mbit/s is one
/// frame per ~100 us -> 400 us per site with 4 senders.
SimTime interval_for(std::int64_t tenth_ms) {
  if (tenth_ms == 0) return 400 * kMicrosecond;
  return tenth_ms * kMillisecond / 10;
}

void schedule_senders(Simulator& sim, SimTime interval,
                      const std::function<void(SiteId)>& send) {
  for (SiteId s = 0; s < kSites; ++s) {
    // Sites are unsynchronized: stagger phases so the aggregate gap is
    // interval/4, like independent senders on a shared segment.
    const SimTime phase = static_cast<SimTime>(s) * interval / static_cast<SimTime>(kSites);
    for (int i = 0; i < kMessagesPerSite; ++i) {
      sim.schedule_at(phase + static_cast<SimTime>(i) * interval, [&send, s] { send(s); });
    }
  }
}

void BM_Fig1_SpontaneousOrder(benchmark::State& state) {
  const SimTime interval = interval_for(state.range(0));
  SpontaneousOrderStats stats;
  for (auto _ : state) {
    Simulator sim;
    Network net(sim, kSites, lan(), Rng(static_cast<std::uint64_t>(state.range(0)) + 1));
    for (SiteId s = 0; s < kSites; ++s) net.subscribe(s, 0, [](const Message&) {});
    net.record_arrivals(0);
    auto send = [&net](SiteId s) { net.multicast(s, 0, std::make_shared<BlankPayload>()); };
    schedule_senders(sim, interval, send);
    sim.run();
    stats = analyze_spontaneous_order(net.arrival_logs());
  }
  state.counters["interval_ms"] = static_cast<double>(state.range(0)) / 10.0;
  // The figure's y-axis: fraction of consecutive message pairs whose relative
  // order is identical at all sites (messages needing no reordering).
  state.counters["pct_spontaneously_ordered"] = 100.0 * stats.pair_agreement();
  // Companion (stricter) metric: identical absolute arrival rank everywhere.
  state.counters["pct_same_position"] = 100.0 * stats.position_agreement();
  state.counters["messages"] = static_cast<double>(stats.messages);
}
BENCHMARK(BM_Fig1_SpontaneousOrder)
    ->DenseRange(0, 50, 5)  // interval in tenths of a millisecond: 0, 0.5, ..., 5 ms
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_Fig1_OptAbcastFastPath(benchmark::State& state) {
  const SimTime interval = interval_for(state.range(0));
  double fast_pct = 0.0;
  double mean_gap_ms = 0.0;
  for (auto _ : state) {
    Simulator sim;
    Network net(sim, kSites, lan(), Rng(static_cast<std::uint64_t>(state.range(0)) + 101));
    std::vector<std::unique_ptr<FailureDetector>> fds;
    std::vector<std::unique_ptr<OptAbcast>> abcasts;
    for (SiteId s = 0; s < kSites; ++s) {
      fds.push_back(std::make_unique<FailureDetector>(sim, net, s, FailureDetectorConfig{}));
    }
    for (SiteId s = 0; s < kSites; ++s) {
      abcasts.push_back(std::make_unique<OptAbcast>(sim, net, *fds[s], s, OptAbcastConfig{}));
      abcasts[s]->set_callbacks(AbcastCallbacks{[](const Message&) {}, [](const MsgId&, TOIndex) {}});
    }
    for (auto& fd : fds) fd->start();
    auto send = [&abcasts](SiteId s) { abcasts[s]->broadcast(std::make_shared<BlankPayload>()); };
    schedule_senders(sim, interval, send);
    sim.run_until(static_cast<SimTime>(kMessagesPerSite) * interval + 5 * kSecond);

    const auto& cs = abcasts[0]->consensus_stats();
    fast_pct = cs.instances_decided
                   ? 100.0 * static_cast<double>(cs.fast_decides) /
                         static_cast<double>(cs.instances_decided)
                   : 100.0;
    const auto& as = abcasts[0]->stats();
    mean_gap_ms = as.to_delivered
                      ? to_ms(static_cast<double>(as.opt_to_gap_total_ns) /
                              static_cast<double>(as.to_delivered))
                      : 0.0;
  }
  state.counters["interval_ms"] = static_cast<double>(state.range(0)) / 10.0;
  state.counters["fast_path_pct"] = fast_pct;
  state.counters["opt_to_gap_ms"] = mean_gap_ms;
}
BENCHMARK(BM_Fig1_OptAbcastFastPath)
    ->DenseRange(0, 50, 10)  // 0, 1, 2, 3, 4, 5 ms
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace otpdb::bench

BENCHMARK_MAIN();
