// Claim C5 (paper Section 1, motivation): atomic broadcast "suffers from
// scalability problems as it involves coordination between sites before
// messages can be delivered" - and optimistic overlap mitigates what the
// growing delivery latency would otherwise cost transactions.
//
// Sweep: number of sites (2..16) x engine (OTP over OPT-ABcast, OTP over a
// fixed sequencer, conservative over OPT-ABcast).
// Counters: ordering gap (opt->TO, grows with n), commit latency, cluster
// throughput. The paper-shaped outcome: the ordering gap grows with n for
// every protocol, but OTP's commit latency grows far slower than the
// conservative engine's because the growth is hidden behind execution.
#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace otpdb::bench {
namespace {

enum class Variant : std::int64_t { otp_optimistic = 0, otp_sequencer = 1, conservative = 2 };

const char* variant_name(Variant v) {
  switch (v) {
    case Variant::otp_optimistic: return "otp/opt-abcast";
    case Variant::otp_sequencer: return "otp/sequencer";
    case Variant::conservative: return "conservative/opt-abcast";
  }
  return "?";
}

void BM_Scalability(benchmark::State& state) {
  const auto variant = static_cast<Variant>(state.range(0));
  const auto n_sites = static_cast<std::size_t>(state.range(1));
  ClusterTotals t;
  double duration_s = 0;
  for (auto _ : state) {
    ClusterConfig config;
    config.n_sites = n_sites;
    config.n_classes = 2 * n_sites;  // constant per-class pressure as n grows
    config.seed = 2024;
    config.net = lan();
    config.abcast =
        variant == Variant::otp_sequencer ? AbcastKind::sequencer : AbcastKind::optimistic;
    auto cluster = variant == Variant::conservative
                       ? std::make_unique<Cluster>(config, conservative_factory())
                       : std::make_unique<Cluster>(config);
    WorkloadConfig wl;
    wl.updates_per_second_per_site = 40;  // constant per-site offered load
    wl.mean_exec_time = 4 * kMillisecond;
    wl.duration = 3 * kSecond;
    WorkloadDriver driver(*cluster, wl, 61);
    driver.start();
    cluster->run_for(wl.duration);
    cluster->quiesce(180 * kSecond);
    t = totals(*cluster);
    duration_s = static_cast<double>(cluster->sim().now()) / 1e9;
  }
  state.SetLabel(variant_name(variant));
  state.counters["sites"] = static_cast<double>(n_sites);
  state.counters["ordering_gap_ms"] = to_ms(t.opt_to_gap_ns.mean());
  state.counters["latency_mean_ms"] = to_ms(t.commit_latency_ns.mean());
  state.counters["latency_p95_ms"] = to_ms(t.commit_latency_percentiles_ns.percentile(95));
  state.counters["commit_wait_ms"] = to_ms(t.commit_wait_ns.mean());
  state.counters["cluster_txn_per_s"] =
      duration_s > 0 ? static_cast<double>(t.committed) / static_cast<double>(n_sites) /
                           duration_s
                     : 0;
}
BENCHMARK(BM_Scalability)
    ->ArgsProduct({{0, 1, 2}, {2, 4, 8, 12, 16}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// Parallel-driver sweep (wall-clock, not simulated, is the point here): the
// same 8-site OTP cluster and offered load, driven by the classic loop
// (threads=1) and by the site-sharded engine with 2/4/8 workers. Fixed work
// per iteration, so real_time IS the serial-vs-parallel comparison;
// tools/run_benches.py turns these rows into the speedup table. The load is
// the high-throughput regime where parallelism pays: enough events per
// 150us lookahead window (serialization_time + base_delay) to amortize the
// two barrier synchronizations each window costs.
void BM_ScalabilityThreads(benchmark::State& state) {
  // threads arg: 1 = classic loop, N>=2 = sharded with N workers, and 0 =
  // sharded with ONE worker (no barrier traffic at all) - isolates the
  // windowing/mailbox overhead from the cost of actual thread handoffs.
  const auto threads = static_cast<unsigned>(state.range(0));
  const auto n_sites = static_cast<std::size_t>(state.range(1));
  ClusterTotals t;
  std::uint64_t events = 0;
  double duration_s = 0;
  for (auto _ : state) {
    ClusterConfig config;
    config.n_sites = n_sites;
    config.n_classes = 2 * n_sites;
    config.seed = 2025;
    config.net = lan();
    config.parallel.threads = threads == 0 ? 1 : threads;
    config.parallel.force_sharded = threads == 0;
    auto cluster = std::make_unique<Cluster>(config);
    WorkloadConfig wl;
    wl.updates_per_second_per_site = 500;  // high-throughput regime
    wl.mean_exec_time = 1 * kMillisecond;
    wl.query_fraction = 0.1;
    wl.duration = 2 * kSecond;
    WorkloadDriver driver(*cluster, wl, 61);
    driver.start();
    cluster->run_for(wl.duration);
    cluster->quiesce(180 * kSecond);
    t = totals(*cluster);
    duration_s = static_cast<double>(cluster->sim().now()) / 1e9;
    events = cluster->engine() ? cluster->engine()->executed() : cluster->sim().executed();
  }
  state.SetLabel(threads == 1 ? "classic-loop"
                              : (threads == 0 ? "sharded-1worker" : "sharded"));
  state.counters["threads"] = static_cast<double>(threads == 0 ? 1 : threads);
  state.counters["sites"] = static_cast<double>(n_sites);
  state.counters["committed"] = static_cast<double>(t.committed);
  state.counters["sim_events"] = static_cast<double>(events);
  state.counters["cluster_txn_per_s"] =
      duration_s > 0
          ? static_cast<double>(t.committed) / static_cast<double>(n_sites) / duration_s
          : 0;
}
BENCHMARK(BM_ScalabilityThreads)
    ->ArgNames({"threads", "sites"})
    ->ArgsProduct({{1, 0, 2, 4, 8}, {8}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// PR-6 ablation on the wan profile: what per-edge channel clocks buy over a
// single global window, and what the sharded hub drain adds on top. Legs:
//   0 = global windows (every shard marches in lockstep windows of the
//       worst-case minimum lookahead),
//   1 = channel clocks, serial barrier drain (the coordinator fans staged
//       deliveries out alone),
//   2 = channel clocks + sharded hub drain (each receiver drains its own
//       staging cells at phase start - the default).
// All three are deterministic schedules of the same offered load. The
// headline counter is EngineStats::rounds - full-stop barrier
// synchronizations, the quantity channel clocks exist to cut on topologies
// with heterogeneous lookahead; the channel legs re-run the global leg's
// configuration to report rounds_vs_global directly.
void BM_TopologyAblation(benchmark::State& state) {
  const auto leg = state.range(0);
  const auto n_sites = static_cast<std::size_t>(state.range(1));

  const auto run_once = [n_sites](WindowStrategy strategy, bool sharded_drain,
                                  EngineStats* stats, ClusterTotals* t, double* duration_s) {
    ClusterConfig config;
    config.n_sites = n_sites;
    config.n_classes = 2 * n_sites;
    config.seed = 2026;
    apply_topology(config, TopologyProfile::wan);
    config.parallel.threads = 2;
    config.parallel.force_sharded = true;
    config.parallel.strategy = strategy;
    config.parallel.sharded_hub_drain = sharded_drain;
    auto cluster = std::make_unique<Cluster>(config);
    WorkloadConfig wl;
    wl.updates_per_second_per_site = 40;
    wl.mean_exec_time = 4 * kMillisecond;
    wl.duration = 3 * kSecond;
    WorkloadDriver driver(*cluster, wl, 61);
    driver.start();
    cluster->run_for(wl.duration);
    cluster->quiesce(180 * kSecond);
    if (stats) *stats = cluster->engine()->stats();
    if (t) *t = totals(*cluster);
    if (duration_s) *duration_s = static_cast<double>(cluster->sim().now()) / 1e9;
  };

  const WindowStrategy strategy = leg == 0 ? WindowStrategy::global : WindowStrategy::channel;
  const bool sharded_drain = leg == 2;
  EngineStats stats;
  ClusterTotals t;
  double duration_s = 0;
  std::uint64_t global_rounds = 0;
  for (auto _ : state) {
    run_once(strategy, sharded_drain, &stats, &t, &duration_s);
    if (leg == 0) {
      global_rounds = stats.rounds;
    } else {
      EngineStats baseline;
      run_once(WindowStrategy::global, sharded_drain, &baseline, nullptr, nullptr);
      global_rounds = baseline.rounds;
    }
  }
  state.SetLabel(leg == 0   ? "global-window"
                 : leg == 1 ? "channel-clock/serial-drain"
                            : "channel-clock/sharded-drain");
  state.counters["sites"] = static_cast<double>(n_sites);
  state.counters["rounds"] = static_cast<double>(stats.rounds);
  state.counters["rounds_vs_global"] =
      global_rounds ? static_cast<double>(stats.rounds) / static_cast<double>(global_rounds)
                    : 0.0;
  state.counters["site_activations"] = static_cast<double>(stats.site_activations);
  state.counters["window_grows"] = static_cast<double>(stats.window_grows);
  state.counters["window_shrinks"] = static_cast<double>(stats.window_shrinks);
  state.counters["committed"] = static_cast<double>(t.committed);
  state.counters["cluster_txn_per_s"] =
      duration_s > 0
          ? static_cast<double>(t.committed) / static_cast<double>(n_sites) / duration_s
          : 0;
}
BENCHMARK(BM_TopologyAblation)
    ->ArgNames({"leg", "sites"})
    ->ArgsProduct({{0, 1, 2}, {8}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace
}  // namespace otpdb::bench

BENCHMARK_MAIN();
