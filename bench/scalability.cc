// Claim C5 (paper Section 1, motivation): atomic broadcast "suffers from
// scalability problems as it involves coordination between sites before
// messages can be delivered" - and optimistic overlap mitigates what the
// growing delivery latency would otherwise cost transactions.
//
// Sweep: number of sites (2..16) x engine (OTP over OPT-ABcast, OTP over a
// fixed sequencer, conservative over OPT-ABcast).
// Counters: ordering gap (opt->TO, grows with n), commit latency, cluster
// throughput. The paper-shaped outcome: the ordering gap grows with n for
// every protocol, but OTP's commit latency grows far slower than the
// conservative engine's because the growth is hidden behind execution.
#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace otpdb::bench {
namespace {

enum class Variant : std::int64_t { otp_optimistic = 0, otp_sequencer = 1, conservative = 2 };

const char* variant_name(Variant v) {
  switch (v) {
    case Variant::otp_optimistic: return "otp/opt-abcast";
    case Variant::otp_sequencer: return "otp/sequencer";
    case Variant::conservative: return "conservative/opt-abcast";
  }
  return "?";
}

void BM_Scalability(benchmark::State& state) {
  const auto variant = static_cast<Variant>(state.range(0));
  const auto n_sites = static_cast<std::size_t>(state.range(1));
  ClusterTotals t;
  double duration_s = 0;
  for (auto _ : state) {
    ClusterConfig config;
    config.n_sites = n_sites;
    config.n_classes = 2 * n_sites;  // constant per-class pressure as n grows
    config.seed = 2024;
    config.net = lan();
    config.abcast =
        variant == Variant::otp_sequencer ? AbcastKind::sequencer : AbcastKind::optimistic;
    auto cluster = variant == Variant::conservative
                       ? std::make_unique<Cluster>(config, conservative_factory())
                       : std::make_unique<Cluster>(config);
    WorkloadConfig wl;
    wl.updates_per_second_per_site = 40;  // constant per-site offered load
    wl.mean_exec_time = 4 * kMillisecond;
    wl.duration = 3 * kSecond;
    WorkloadDriver driver(*cluster, wl, 61);
    driver.start();
    cluster->run_for(wl.duration);
    cluster->quiesce(180 * kSecond);
    t = totals(*cluster);
    duration_s = static_cast<double>(cluster->sim().now()) / 1e9;
  }
  state.SetLabel(variant_name(variant));
  state.counters["sites"] = static_cast<double>(n_sites);
  state.counters["ordering_gap_ms"] = to_ms(t.opt_to_gap_ns.mean());
  state.counters["latency_mean_ms"] = to_ms(t.commit_latency_ns.mean());
  state.counters["latency_p95_ms"] = to_ms(t.commit_latency_percentiles_ns.percentile(95));
  state.counters["commit_wait_ms"] = to_ms(t.commit_wait_ns.mean());
  state.counters["cluster_txn_per_s"] =
      duration_s > 0 ? static_cast<double>(t.committed) / static_cast<double>(n_sites) /
                           duration_s
                     : 0;
}
BENCHMARK(BM_Scalability)
    ->ArgsProduct({{0, 1, 2}, {2, 4, 8, 12, 16}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// Parallel-driver sweep (wall-clock, not simulated, is the point here): the
// same 8-site OTP cluster and offered load, driven by the classic loop
// (threads=1) and by the site-sharded engine with 2/4/8 workers. Fixed work
// per iteration, so real_time IS the serial-vs-parallel comparison;
// tools/run_benches.py turns these rows into the speedup table. The load is
// the high-throughput regime where parallelism pays: enough events per
// 150us lookahead window (serialization_time + base_delay) to amortize the
// two barrier synchronizations each window costs.
void BM_ScalabilityThreads(benchmark::State& state) {
  // threads arg: 1 = classic loop, N>=2 = sharded with N workers, and 0 =
  // sharded with ONE worker (no barrier traffic at all) - isolates the
  // windowing/mailbox overhead from the cost of actual thread handoffs.
  const auto threads = static_cast<unsigned>(state.range(0));
  const auto n_sites = static_cast<std::size_t>(state.range(1));
  ClusterTotals t;
  std::uint64_t events = 0;
  double duration_s = 0;
  for (auto _ : state) {
    ClusterConfig config;
    config.n_sites = n_sites;
    config.n_classes = 2 * n_sites;
    config.seed = 2025;
    config.net = lan();
    config.parallel.threads = threads == 0 ? 1 : threads;
    config.parallel.force_sharded = threads == 0;
    auto cluster = std::make_unique<Cluster>(config);
    WorkloadConfig wl;
    wl.updates_per_second_per_site = 500;  // high-throughput regime
    wl.mean_exec_time = 1 * kMillisecond;
    wl.query_fraction = 0.1;
    wl.duration = 2 * kSecond;
    WorkloadDriver driver(*cluster, wl, 61);
    driver.start();
    cluster->run_for(wl.duration);
    cluster->quiesce(180 * kSecond);
    t = totals(*cluster);
    duration_s = static_cast<double>(cluster->sim().now()) / 1e9;
    events = cluster->engine() ? cluster->engine()->executed() : cluster->sim().executed();
  }
  state.SetLabel(threads == 1 ? "classic-loop"
                              : (threads == 0 ? "sharded-1worker" : "sharded"));
  state.counters["threads"] = static_cast<double>(threads == 0 ? 1 : threads);
  state.counters["sites"] = static_cast<double>(n_sites);
  state.counters["committed"] = static_cast<double>(t.committed);
  state.counters["sim_events"] = static_cast<double>(events);
  state.counters["cluster_txn_per_s"] =
      duration_s > 0
          ? static_cast<double>(t.committed) / static_cast<double>(n_sites) / duration_s
          : 0;
}
BENCHMARK(BM_ScalabilityThreads)
    ->ArgNames({"threads", "sites"})
    ->ArgsProduct({{1, 0, 2, 4, 8}, {8}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace
}  // namespace otpdb::bench

BENCHMARK_MAIN();
