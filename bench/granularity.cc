// Concurrency-granularity ablation (paper Section 6 / companion report [13]):
// class-queue OTP vs. fine-granularity lock-table OTP on the same workload.
//
// The class model serializes all transactions of a class; the object model
// serializes only true object conflicts. Sweep the number of conflict classes
// with the database size held constant: with many classes both engines match;
// as classes get hotter, the class engine's queues saturate while the
// lock-table engine keeps scaling until transactions genuinely collide on
// objects.
//
// Counters: commit latency (ms), goodput (txn/s), abort %.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/lock_table_replica.h"

namespace otpdb::bench {
namespace {

ReplicaFactory lock_table_factory() {
  return [](const ReplicaDeps& d) {
    return std::make_unique<LockTableReplica>(d.sim, d.abcast, d.storage, d.catalog, d.registry,
                                              d.site, rmw_access_extractor(d.catalog));
  };
}

void BM_Granularity(benchmark::State& state) {
  const bool fine_grained = state.range(0) == 1;
  const auto n_classes = static_cast<std::size_t>(state.range(1));
  constexpr std::uint64_t kTotalObjects = 256;
  ClusterTotals t;
  double duration_s = 0;
  for (auto _ : state) {
    ClusterConfig config;
    config.n_sites = 4;
    config.n_classes = n_classes;
    config.objects_per_class = kTotalObjects / n_classes;
    config.seed = 616;
    config.net = lan();
    auto cluster = fine_grained ? std::make_unique<Cluster>(config, lock_table_factory())
                                : std::make_unique<Cluster>(config);
    WorkloadConfig wl;
    wl.updates_per_second_per_site = 100;
    wl.mean_exec_time = 4 * kMillisecond;
    wl.ops_per_txn = 2;
    wl.duration = 3 * kSecond;
    WorkloadDriver driver(*cluster, wl, 55);
    driver.start();
    cluster->run_for(wl.duration);
    cluster->quiesce(180 * kSecond);
    t = totals(*cluster);
    duration_s = static_cast<double>(cluster->sim().now()) / 1e9;
  }
  state.SetLabel(fine_grained ? "lock-table (object)" : "class-queue");
  state.counters["classes"] = static_cast<double>(n_classes);
  state.counters["latency_mean_ms"] = to_ms(t.commit_latency_ns.mean());
  state.counters["txn_per_s"] = goodput(t, 4, duration_s, false);
  state.counters["abort_pct"] =
      t.committed ? 100.0 * static_cast<double>(t.aborts) / static_cast<double>(t.committed)
                  : 0.0;
}
BENCHMARK(BM_Granularity)
    ->ArgsProduct({{0, 1}, {1, 2, 4, 16}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace otpdb::bench

BENCHMARK_MAIN();
