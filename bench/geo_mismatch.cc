// Topology leg of the mismatch experiment (paper Sections 3.2 and 4): how
// often the optimistic (tentative) delivery order disagrees with the final
// (definitive) order as the network grows from a single broadcast domain to
// metro, wan, and three-datacenter shapes.
//
// The paper's optimism is calibrated for a LAN, where spontaneous total
// order makes mismatches rare. Wide-area profiles break that assumption two
// ways: per-edge jitter reorders messages between regions, and the larger
// opt->TO gap gives every mismatch more provisional work to undo. This bench
// records the opt-vs-final mismatch rate per profile - the fraction of
// commits whose transaction was wrongly ordered at its head (abort + redo,
// CC8) or moved behind a conflicting peer (reorder, CC10) - plus the
// ordering fast-path rate as the network-level mismatch indicator.
#include <benchmark/benchmark.h>

#include "abcast/opt_abcast.h"
#include "bench_common.h"
#include "net/topology.h"

namespace otpdb::bench {
namespace {

void BM_GeoMismatch(benchmark::State& state) {
  const auto profile = static_cast<TopologyProfile>(state.range(0));
  ClusterTotals t;
  double fast_pct = 0;
  double duration_s = 0;
  for (auto _ : state) {
    ClusterConfig config;
    config.n_sites = 6;
    config.n_classes = 8;
    config.seed = 424;
    apply_topology(config, profile);
    Cluster cluster(config);
    WorkloadConfig wl;
    wl.updates_per_second_per_site = 60;
    wl.mean_exec_time = 2 * kMillisecond;
    wl.duration = 3 * kSecond;
    WorkloadDriver driver(cluster, wl, 31);
    driver.start();
    cluster.run_for(wl.duration);
    cluster.quiesce(300 * kSecond);
    t = totals(cluster);
    duration_s = static_cast<double>(cluster.sim().now()) / 1e9;
    if (auto* opt = dynamic_cast<OptAbcast*>(&cluster.abcast(0))) {
      const auto& cs = opt->consensus_stats();
      fast_pct = cs.instances_decided ? 100.0 * static_cast<double>(cs.fast_decides) /
                                            static_cast<double>(cs.instances_decided)
                                      : 100.0;
    }
  }
  state.SetLabel(topology_profile_name(profile));
  const double commits = static_cast<double>(t.committed);
  state.counters["mismatch_pct"] =
      t.committed ? 100.0 * static_cast<double>(t.aborts + t.reorders) / commits : 0.0;
  state.counters["abort_pct"] =
      t.committed ? 100.0 * static_cast<double>(t.aborts) / commits : 0.0;
  state.counters["reorder_pct"] =
      t.committed ? 100.0 * static_cast<double>(t.reorders) / commits : 0.0;
  state.counters["fast_path_pct"] = fast_pct;
  state.counters["ordering_gap_ms"] = to_ms(t.opt_to_gap_ns.mean());
  state.counters["latency_mean_ms"] = to_ms(t.commit_latency_ns.mean());
  state.counters["txn_per_s"] =
      duration_s > 0 ? static_cast<double>(t.committed) / 6.0 / duration_s : 0;
}
BENCHMARK(BM_GeoMismatch)
    ->ArgNames({"profile"})
    ->Args({static_cast<std::int64_t>(TopologyProfile::flat)})
    ->Args({static_cast<std::int64_t>(TopologyProfile::metro)})
    ->Args({static_cast<std::int64_t>(TopologyProfile::wan)})
    ->Args({static_cast<std::int64_t>(TopologyProfile::geo_3dc)})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace otpdb::bench

BENCHMARK_MAIN();
