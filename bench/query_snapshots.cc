// Claim C4 (paper Section 5): read-only queries execute locally on
// multi-version snapshots - they span several conflict classes dynamically,
// never enter class queues, never block update processing, and still observe
// 1-copy-serializable states.
//
// Sweep: query share of the submitted load x classes spanned per query.
// Counters: query latency (ms), retry rate (% of queries that had to wait for
// an in-flight commit), update commit latency (ms; must not degrade with
// query load), throughputs.
#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace otpdb::bench {
namespace {

void BM_QuerySnapshots(benchmark::State& state) {
  const double query_fraction = static_cast<double>(state.range(0)) / 100.0;
  const auto query_span = static_cast<std::size_t>(state.range(1));
  ClusterTotals t;
  std::uint64_t queries_done = 0;
  double duration_s = 0;
  for (auto _ : state) {
    ClusterConfig config;
    config.n_sites = 4;
    config.n_classes = 8;
    config.objects_per_class = 32;
    config.seed = 888;
    config.net = lan();
    Cluster cluster(config);
    WorkloadConfig wl;
    wl.updates_per_second_per_site = 120;
    wl.mean_exec_time = 2 * kMillisecond;
    wl.query_fraction = query_fraction;
    wl.query_classes = query_span;
    wl.query_reads_per_class = 4;
    wl.mean_query_exec_time = 4 * kMillisecond;
    wl.duration = 3 * kSecond;
    WorkloadDriver driver(cluster, wl, 23);
    driver.start();
    cluster.run_for(wl.duration);
    cluster.quiesce(120 * kSecond);
    t = totals(cluster);
    duration_s = static_cast<double>(cluster.sim().now()) / 1e9;
    for (SiteId s = 0; s < cluster.site_count(); ++s) {
      queries_done += cluster.replica(s).metrics().queries_done;
    }
  }
  state.counters["query_pct"] = 100.0 * query_fraction;
  state.counters["query_span_classes"] = static_cast<double>(query_span);
  state.counters["query_latency_ms"] = to_ms(t.query_latency_ns.mean());
  state.counters["query_retry_pct"] =
      queries_done ? 100.0 * static_cast<double>(t.query_retries) /
                         static_cast<double>(queries_done)
                   : 0.0;
  state.counters["update_latency_ms"] = to_ms(t.commit_latency_ns.mean());
  state.counters["updates_per_s"] =
      duration_s > 0 ? static_cast<double>(t.committed) / 4.0 / duration_s : 0;
  state.counters["queries_per_s"] =
      duration_s > 0 ? static_cast<double>(queries_done) / duration_s : 0;
}
BENCHMARK(BM_QuerySnapshots)
    ->ArgsProduct({{0, 20, 50, 80}, {1, 2, 4, 8}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace otpdb::bench

BENCHMARK_MAIN();
