// Component micro-benchmarks (wall-clock): the hot data structures and code
// paths underlying the simulation-level experiments - event queue, RNG,
// versioned store, class queue, network message path, consensus instance,
// end-to-end single-transaction processing.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "abcast/consensus.h"
#include "abcast/opt_abcast.h"
#include "core/class_queue.h"
#include "core/cluster.h"
#include "db/txn_interner.h"
#include "db/versioned_store.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "workload/workload.h"

// Defines the counting global operator new (one TU per binary): lets
// BM_SimulatorSteadyStateChurn report allocations per event (expected: 0.0 —
// InlineAction turns an oversized capture into a compile error, so the cost
// cannot silently reappear).
#include "util/counting_new.h"

namespace otpdb::bench {
namespace {

void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_u64());
}
BENCHMARK(BM_RngNext);

void BM_RngZipf(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.zipf(64, 0.99));
}
BENCHMARK(BM_RngZipf);

void BM_SimulatorScheduleAndRun(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    for (int i = 0; i < 1000; ++i) sim.schedule_at(i, [] {});
    sim.run();
    benchmark::DoNotOptimize(sim.executed());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorScheduleAndRun);

/// Steady-state event churn with the allocation counter attached: a pool of
/// self-rescheduling events (the hot-path closure shape: a pointer or two)
/// runs with constant pending count. allocs_per_event must be 0.0 — the
/// proof that InlineAction keeps per-event heap allocations off the path.
void BM_SimulatorSteadyStateChurn(benchmark::State& state) {
  struct Recur {
    Simulator* sim;
    void operator()() const { sim->schedule_after(10, Recur{sim}); }
  };
  Simulator sim;
  for (int i = 0; i < 64; ++i) sim.schedule_at(i, Recur{&sim});
  sim.run(8 * 1024);  // warm-up: slot pool and heap vector reach steady size
  const std::uint64_t allocs_before = heap_alloc_count.load(std::memory_order_relaxed);
  std::uint64_t events = 0;
  for (auto _ : state) {
    constexpr std::uint64_t kChunk = 4096;
    events += sim.run(kChunk);
  }
  const std::uint64_t allocs = heap_alloc_count.load(std::memory_order_relaxed) - allocs_before;
  state.counters["allocs_per_event"] =
      events ? static_cast<double>(allocs) / static_cast<double>(events) : 0.0;
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_SimulatorSteadyStateChurn);

void BM_StoreWriteCommit(benchmark::State& state) {
  VersionedStore store(128);
  TOIndex index = 1;
  for (auto _ : state) {
    const TxnId txn = 0;  // dense ids recycle; same slot reused every commit
    store.write(txn, index % 128, Value{static_cast<std::int64_t>(index)});
    store.commit(txn, index);
    ++index;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StoreWriteCommit);

void BM_StoreSnapshotRead(benchmark::State& state) {
  VersionedStore store(16);
  for (TOIndex i = 1; i <= 1024; ++i) {
    store.write(0, i % 16, Value{static_cast<std::int64_t>(i)});
    store.commit(0, i);
  }
  TOIndex snap = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.read_snapshot_ptr(snap % 16, snap % 1024));
    ++snap;
  }
}
BENCHMARK(BM_StoreSnapshotRead);

void BM_StoreReadForTxn(benchmark::State& state) {
  // Transaction-scoped read with a populated write-set: the inner loop of
  // every stored procedure (read-your-writes check + committed fallback).
  VersionedStore store(64);
  for (ObjectId obj = 0; obj < 64; ++obj) store.load(obj, Value{std::int64_t{1}});
  const TxnId txn = 0;
  for (ObjectId obj = 0; obj < 4; ++obj) store.write(txn, obj, Value{std::int64_t{2}});
  ObjectId obj = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.read_for_txn_ptr(txn, obj % 64));
    ++obj;
  }
}
BENCHMARK(BM_StoreReadForTxn);

void BM_TxnInternerRoundTrip(benchmark::State& state) {
  // intern -> lookup -> release, the per-transaction identity cost of the
  // dense-id scheme (one hash at Opt-deliver, one at TO-deliver).
  TxnIdInterner interner;
  std::uint64_t seq = 0;
  for (auto _ : state) {
    const MsgId id{0, seq++};
    const TxnId tid = interner.intern(id);
    benchmark::DoNotOptimize(interner.find(id));
    interner.release(tid);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TxnInternerRoundTrip);

void BM_ClassQueueReorder(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  std::vector<std::unique_ptr<TxnRecord>> txns;
  for (std::size_t i = 0; i < depth; ++i) {
    txns.push_back(std::make_unique<TxnRecord>());
    txns.back()->id = MsgId{0, i};
    txns.back()->deliv = DeliveryState::pending;
  }
  for (auto _ : state) {
    ClassQueue q;
    for (auto& t : txns) {
      t->deliv = DeliveryState::pending;
      q.append(t.get());
    }
    // Reverse TO order: every transaction reorders to the committable prefix.
    for (auto it = txns.rbegin(); it != txns.rend(); ++it) {
      (*it)->deliv = DeliveryState::committable;
      q.reorder_before_first_pending(it->get());
    }
    benchmark::DoNotOptimize(q.head());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(depth));
}
BENCHMARK(BM_ClassQueueReorder)->Arg(8)->Arg(64);

void BM_NetworkMulticastPath(benchmark::State& state) {
  Simulator sim;
  NetConfig cfg;
  cfg.hiccup_prob = 0;
  Network net(sim, 4, cfg, Rng(1));
  struct Blank final : Payload {};
  std::uint64_t delivered = 0;
  for (SiteId s = 0; s < 4; ++s) {
    net.subscribe(s, 0, [&delivered](const Message&) { ++delivered; });
  }
  auto payload = std::make_shared<Blank>();
  for (auto _ : state) {
    net.multicast(0, 0, payload);
    sim.run();
  }
  benchmark::DoNotOptimize(delivered);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 4);
}
BENCHMARK(BM_NetworkMulticastPath);

void BM_ConsensusInstanceFastPath(benchmark::State& state) {
  // Cost of a full 4-site consensus instance deciding via the fast path,
  // including all simulated message deliveries.
  for (auto _ : state) {
    state.PauseTiming();
    Simulator sim;
    NetConfig cfg;
    cfg.hiccup_prob = 0;
    Network net(sim, 4, cfg, Rng(1));
    std::vector<std::unique_ptr<FailureDetector>> fds;
    std::vector<std::unique_ptr<ConsensusHost>> hosts;
    for (SiteId s = 0; s < 4; ++s) {
      fds.push_back(std::make_unique<FailureDetector>(sim, net, s, FailureDetectorConfig{}));
    }
    for (SiteId s = 0; s < 4; ++s) {
      hosts.push_back(std::make_unique<ConsensusHost>(sim, net, *fds[s], s, ConsensusConfig{}));
    }
    state.ResumeTiming();
    for (SiteId s = 0; s < 4; ++s) hosts[s]->propose(0, {MsgId{0, 1}, MsgId{1, 1}});
    sim.run_until(kSecond);
    benchmark::DoNotOptimize(hosts[0]->decided(0));
  }
}
BENCHMARK(BM_ConsensusInstanceFastPath);

void BM_EndToEndTransaction(benchmark::State& state) {
  // Wall-clock cost of simulating one complete replicated transaction
  // (broadcast, optimistic execution at 4 sites, ordering, commit).
  for (auto _ : state) {
    state.PauseTiming();
    ClusterConfig config;
    config.n_sites = 4;
    config.n_classes = 1;
    config.seed = 1;
    config.net.hiccup_prob = 0;
    Cluster cluster(config);
    const ProcId rmw = register_rmw_procedure(cluster.procedures(), cluster.catalog());
    state.ResumeTiming();
    TxnArgs args;
    args.ints = {1, 0};
    cluster.replica(0).submit_update(rmw, 0, args, kMillisecond);
    // quiesce() alone returns immediately: the submission is still an
    // undelivered network event, so every replica reports in_flight == 0.
    // Run the simulation far enough for Opt-delivery to register the
    // transaction, then quiesce to commit it everywhere.
    cluster.run_for(50 * kMillisecond);
    cluster.quiesce(10 * kSecond);
    benchmark::DoNotOptimize(cluster.total_committed());
    if (cluster.total_committed() != config.n_sites) {
      state.SkipWithError("end-to-end transaction did not commit at all sites");
      break;
    }
  }
}
BENCHMARK(BM_EndToEndTransaction);

void BM_SimulatedClusterSecond(benchmark::State& state) {
  // Wall-clock cost of one simulated second of a loaded 4-site OTP cluster -
  // the unit of account for every experiment above.
  for (auto _ : state) {
    ClusterConfig config;
    config.n_sites = 4;
    config.n_classes = 8;
    config.seed = 3;
    Cluster cluster(config);
    WorkloadConfig wl;
    wl.updates_per_second_per_site = 100;
    wl.duration = kSecond;
    WorkloadDriver driver(cluster, wl, 5);
    driver.start();
    cluster.run_for(wl.duration);
    cluster.quiesce(60 * kSecond);
    benchmark::DoNotOptimize(cluster.total_committed());
  }
}
BENCHMARK(BM_SimulatedClusterSecond)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace otpdb::bench

BENCHMARK_MAIN();
