// Robustness-under-chaos bench: the TPC-C-lite mix on an OTP cluster with
// each declarative fault profile armed (the same profiles otpdb_cli exposes
// via --chaos), against a fault-free baseline. The point is not raw goodput -
// it is the cost of surviving: how much throughput and latency each fault
// class taxes while the correctness audit stays clean, with the injected-
// fault counters reported alongside so a regression in the chaos plane
// itself (clauses silently not firing) is visible in the trajectory.
//
// Counters: txn_per_s, latency_ms, audit_clean, plus the injection ledger
// (dups_injected/suppressed, reorders_injected, gray_delays, parked/
// released, flap_transitions), suspicion churn (fd_suspicions, fd_restores)
// and - for the flaky-disk profile - the storage-side ledger
// (io_faults_injected, wal_io_errors, wal_io_retries).
#include <benchmark/benchmark.h>

#include <string>

#include "bench_common.h"
#include "db/durable_store.h"
#include "net/fault_plan.h"
#include "workload/tpcc_lite.h"

namespace otpdb::bench {
namespace {

// Scenario axis: 0 = no chaos (baseline), then the named CLI profiles.
const char* const kProfiles[] = {"baseline", "dup-heavy", "gray-wan", "asym-flap", "flaky-disk"};

void BM_ChaosRobustness(benchmark::State& state) {
  const char* profile_name = kProfiles[state.range(0)];
  const SimTime duration = 3 * kSecond;

  ClusterTotals t;
  double duration_s = 0;
  bool audit_clean = true;
  ChaosStats cs;
  FailureDetectorStats fd;
  std::uint64_t io_injected = 0, wal_errors = 0, wal_retries = 0;
  for (auto _ : state) {
    ClusterConfig config;
    config.n_sites = 4;
    config.n_classes = 8;
    tpcc::Layout layout;
    config.objects_per_class = layout.objects_per_warehouse();
    config.seed = 1999;
    config.net = lan();

    ChaosProfile profile;
    if (std::string(profile_name) != "baseline") {
      const bool known = parse_chaos_profile(profile_name, config.n_sites, duration, profile);
      if (!known) {
        state.SkipWithError("unknown chaos profile");
        return;
      }
      config.chaos = profile.net;
      if (profile.flaky_disk) {
        // Same injector strengths the CLI arms for --chaos=flaky-disk.
        config.storage.backend = StorageBackendKind::durable;
        config.storage.faults.enabled = true;
        config.storage.faults.seed = config.seed;
        config.storage.faults.write_error_prob = 0.02;
        config.storage.faults.torn_write_prob = 0.01;
        config.storage.faults.fsync_error_prob = 0.02;
      }
    }

    Cluster cluster(config);
    tpcc::MixConfig mix;
    mix.txn_per_second_per_site = 120;
    mix.duration = duration;
    mix.warehouse_skew_theta = 0.6;
    tpcc::TpccDriver driver(cluster, layout, mix, 2024);
    driver.start();
    cluster.run_for(mix.duration);
    cluster.quiesce(180 * kSecond);

    t = totals(cluster);
    duration_s = static_cast<double>(cluster.sim().now()) / 1e9;
    for (SiteId s = 0; s < cluster.site_count(); ++s) {
      audit_clean &= driver.audit(s).empty();
      if (const IoFaultStats* io = cluster.storage(s).io_fault_stats()) {
        io_injected += io->injected();
      }
      if (const WalStats* w = cluster.wal_stats(s)) {
        wal_errors += w->io_errors;
        wal_retries += w->io_retries;
      }
    }
    cs = cluster.chaos_stats();
    fd = cluster.fd_stats();
  }

  state.SetLabel(profile_name);
  state.counters["txn_per_s"] = goodput(t, 4, duration_s, false);
  state.counters["latency_ms"] = to_ms(t.commit_latency_ns.mean());
  state.counters["audit_clean"] = audit_clean ? 1.0 : 0.0;
  state.counters["dups_injected"] = static_cast<double>(cs.duplicates_injected);
  state.counters["dups_suppressed"] = static_cast<double>(cs.duplicates_suppressed);
  state.counters["reorders_injected"] = static_cast<double>(cs.reorders_injected);
  state.counters["gray_delays"] = static_cast<double>(cs.gray_delays);
  state.counters["deliveries_parked"] = static_cast<double>(cs.deliveries_parked);
  state.counters["parked_released"] = static_cast<double>(cs.parked_released);
  state.counters["flap_transitions"] = static_cast<double>(cs.flap_transitions);
  state.counters["fd_suspicions"] = static_cast<double>(fd.suspicions);
  state.counters["fd_restores"] = static_cast<double>(fd.restores);
  state.counters["io_faults_injected"] = static_cast<double>(io_injected);
  state.counters["wal_io_errors"] = static_cast<double>(wal_errors);
  state.counters["wal_io_retries"] = static_cast<double>(wal_retries);
}
BENCHMARK(BM_ChaosRobustness)
    ->ArgNames({"profile"})
    ->DenseRange(0, 4, 1)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace otpdb::bench

BENCHMARK_MAIN();
