// TPC-C-lite end-to-end bench: the order-entry mix (NewOrder/Payment/
// Delivery/StockLevel) on each engine over the calibrated LAN. This is the
// "realistic application" composite of all the paper's mechanisms: stored
// procedures, conflict-class partitioning by warehouse, optimistic execution
// against the tentative order, snapshot queries, and the consistency audit.
//
// Counters: goodput (txn/s), commit latency (ms), abort %, query latency
// (ms), audit_clean (1 = money/stock conserved at every site).
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "db/durable_store.h"
#include "workload/tpcc_lite.h"

namespace otpdb::bench {
namespace {

enum class Engine : std::int64_t { otp = 0, conservative = 1 };

void BM_TpccMix(benchmark::State& state) {
  const auto engine = static_cast<Engine>(state.range(0));
  const auto warehouses = static_cast<std::size_t>(state.range(1));
  ClusterTotals t;
  double duration_s = 0;
  bool audit_clean = true;
  std::uint64_t queries = 0;
  for (auto _ : state) {
    ClusterConfig config;
    config.n_sites = 4;
    config.n_classes = warehouses;
    tpcc::Layout layout;
    config.objects_per_class = layout.objects_per_warehouse();
    config.seed = 1999;
    config.net = lan();
    auto cluster = engine == Engine::conservative
                       ? std::make_unique<Cluster>(config, conservative_factory())
                       : std::make_unique<Cluster>(config);
    tpcc::MixConfig mix;
    mix.txn_per_second_per_site = 120;
    mix.duration = 3 * kSecond;
    mix.warehouse_skew_theta = 0.6;
    tpcc::TpccDriver driver(*cluster, layout, mix, 2024);
    driver.start();
    cluster->run_for(mix.duration);
    cluster->quiesce(180 * kSecond);
    t = totals(*cluster);
    duration_s = static_cast<double>(cluster->sim().now()) / 1e9;
    for (SiteId s = 0; s < cluster->site_count(); ++s) {
      audit_clean &= driver.audit(s).empty();
      queries += cluster->replica(s).metrics().queries_done;
    }
  }
  state.SetLabel(engine == Engine::otp ? "otp" : "conservative");
  state.counters["warehouses"] = static_cast<double>(warehouses);
  state.counters["txn_per_s"] = goodput(t, 4, duration_s, false);
  state.counters["latency_ms"] = to_ms(t.commit_latency_ns.mean());
  state.counters["abort_pct"] =
      t.committed ? 100.0 * static_cast<double>(t.aborts) / static_cast<double>(t.committed)
                  : 0.0;
  state.counters["query_latency_ms"] = to_ms(t.query_latency_ns.mean());
  state.counters["audit_clean"] = audit_clean ? 1.0 : 0.0;
}
BENCHMARK(BM_TpccMix)
    ->ArgsProduct({{0, 1}, {2, 8, 16}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// Parallel-driver sweep: the full TPC-C-lite mix (10% remote NewOrder /
// 15% remote Payment included) on an 8-site OTP cluster, classic loop
// (threads=1) vs the sharded engine with 2/4/8 workers. Fixed work per
// iteration: real_time is the serial-vs-parallel wall-clock comparison and
// tools/run_benches.py derives the speedup table from the threads counter.
// The audit still runs per site - the parallel driver must not cost any
// consistency.
void BM_TpccMixThreads(benchmark::State& state) {
  // threads arg: 1 = classic loop, N>=2 = sharded with N workers, 0 =
  // sharded with one worker (windowing overhead only, no barrier traffic).
  const auto threads = static_cast<unsigned>(state.range(0));
  ClusterTotals t;
  double duration_s = 0;
  bool audit_clean = true;
  for (auto _ : state) {
    ClusterConfig config;
    config.n_sites = 8;
    config.n_classes = 16;
    tpcc::Layout layout;
    config.objects_per_class = layout.objects_per_warehouse();
    config.seed = 1999;
    config.net = lan();
    config.parallel.threads = threads == 0 ? 1 : threads;
    config.parallel.force_sharded = threads == 0;
    auto cluster = std::make_unique<Cluster>(config);
    tpcc::MixConfig mix;
    mix.txn_per_second_per_site = 250;  // high-throughput regime
    mix.duration = 2 * kSecond;
    mix.warehouse_skew_theta = 0.6;
    mix.remote_txn_fraction = 0.1;
    tpcc::TpccDriver driver(*cluster, layout, mix, 2024);
    driver.start();
    cluster->run_for(mix.duration);
    cluster->quiesce(180 * kSecond);
    t = totals(*cluster);
    duration_s = static_cast<double>(cluster->sim().now()) / 1e9;
    for (SiteId s = 0; s < cluster->site_count(); ++s) {
      audit_clean &= driver.audit(s).empty();
    }
  }
  state.SetLabel(threads == 1 ? "classic-loop"
                              : (threads == 0 ? "sharded-1worker" : "sharded"));
  state.counters["threads"] = static_cast<double>(threads == 0 ? 1 : threads);
  state.counters["txn_per_s"] = goodput(t, 8, duration_s, false);
  state.counters["latency_ms"] = to_ms(t.commit_latency_ns.mean());
  state.counters["audit_clean"] = audit_clean ? 1.0 : 0.0;
}
BENCHMARK(BM_TpccMixThreads)
    ->ArgNames({"threads"})
    ->ArgsProduct({{1, 0, 2, 4, 8}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// Storage-tier sweep: the same mix over the in-memory backend (durable:0,
// the pre-storage-tier configuration - its goodput/latency rows are the
// regression guard) and the group-commit WAL backend (durable:1). Durable
// rows add the I/O counters: commits logged, fsyncs executed, the mean
// group-commit batch size (commits amortized per fsync - the paper's
// motivation for ordering the log by the definitive TO index), WAL bytes and
// checkpoints. Commits are not gated on the fsync, so goodput should match
// the memory rows; only the durability watermark trails.
void BM_TpccMixStorage(benchmark::State& state) {
  const bool durable = state.range(0) != 0;
  ClusterTotals t;
  double duration_s = 0;
  bool audit_clean = true;
  WalStats wal;
  for (auto _ : state) {
    ClusterConfig config;
    config.n_sites = 4;
    config.n_classes = 8;
    tpcc::Layout layout;
    config.objects_per_class = layout.objects_per_warehouse();
    config.seed = 1999;
    config.net = lan();
    if (durable) config.storage.backend = StorageBackendKind::durable;
    auto cluster = std::make_unique<Cluster>(config);
    tpcc::MixConfig mix;
    mix.txn_per_second_per_site = 120;
    mix.duration = 3 * kSecond;
    mix.warehouse_skew_theta = 0.6;
    tpcc::TpccDriver driver(*cluster, layout, mix, 2024);
    driver.start();
    cluster->run_for(mix.duration);
    cluster->quiesce(180 * kSecond);
    t = totals(*cluster);
    duration_s = static_cast<double>(cluster->sim().now()) / 1e9;
    wal = WalStats{};
    for (SiteId s = 0; s < cluster->site_count(); ++s) {
      audit_clean &= driver.audit(s).empty();
      if (const WalStats* w = cluster->wal_stats(s)) {
        wal.commits_logged += w->commits_logged;
        wal.fsyncs += w->fsyncs;
        wal.wal_bytes += w->wal_bytes;
        wal.checkpoints += w->checkpoints;
        wal.segments_truncated += w->segments_truncated;
      }
    }
  }
  state.SetLabel(durable ? "durable" : "memory");
  state.counters["txn_per_s"] = goodput(t, 4, duration_s, false);
  state.counters["latency_ms"] = to_ms(t.commit_latency_ns.mean());
  state.counters["audit_clean"] = audit_clean ? 1.0 : 0.0;
  if (durable) {
    state.counters["wal_commits"] = static_cast<double>(wal.commits_logged);
    state.counters["wal_fsyncs"] = static_cast<double>(wal.fsyncs);
    state.counters["group_commit_batch"] =
        wal.fsyncs ? static_cast<double>(wal.commits_logged) / static_cast<double>(wal.fsyncs)
                   : 0.0;
    state.counters["wal_kib"] = static_cast<double>(wal.wal_bytes) / 1024.0;
    state.counters["checkpoints"] = static_cast<double>(wal.checkpoints);
    state.counters["segments_truncated"] = static_cast<double>(wal.segments_truncated);
  }
}
BENCHMARK(BM_TpccMixStorage)
    ->ArgNames({"durable"})
    ->ArgsProduct({{0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace otpdb::bench

BENCHMARK_MAIN();
