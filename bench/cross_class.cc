// Cross-partition (multi-class) transaction bench: what does a TPC-C-style
// remote fraction cost under the OTP engine? Two sweeps, both paper-style
// "x-axis = remote fraction, y-axis = abort rate / latency" figures:
//
//  * BM_CrossClassRmw - the generic rmw workload with a cross_class_fraction
//    of updates spanning cross_class_span consecutive classes, on the OTP and
//    conservative engines, with the 1-copy-serializability checker attached
//    (counter `serializable` must stay 1).
//  * BM_TpccRemote - TPC-C-lite with remote NewOrder/Payment transactions
//    (remote_txn_fraction over {home, remote} warehouse pairs), audited for
//    global money/stock conservation.
//
// Counters: cross_pct/remote_pct, txn_per_s, latency_ms, abort_pct,
// query_latency_ms, serializable/audit_clean.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "checker/history.h"
#include "workload/tpcc_lite.h"

namespace otpdb::bench {
namespace {

enum class Engine : std::int64_t { otp = 0, conservative = 1 };

void BM_CrossClassRmw(benchmark::State& state) {
  const auto engine = static_cast<Engine>(state.range(0));
  const double cross_fraction = static_cast<double>(state.range(1)) / 1000.0;  // per-mille
  ClusterTotals t;
  double duration_s = 0;
  bool serializable = true;
  for (auto _ : state) {
    ClusterConfig config;
    config.n_sites = 4;
    config.n_classes = 8;
    config.objects_per_class = 64;
    config.seed = 77;
    config.net = lan();
    auto cluster = engine == Engine::conservative
                       ? std::make_unique<Cluster>(config, conservative_factory())
                       : std::make_unique<Cluster>(config);
    HistoryRecorder recorder(*cluster);
    WorkloadConfig wl;
    wl.updates_per_second_per_site = 120;
    wl.mean_exec_time = 2 * kMillisecond;
    wl.duration = 2 * kSecond;
    wl.cross_class_fraction = cross_fraction;
    wl.cross_class_span = 2;
    WorkloadDriver driver(*cluster, wl, 2026);
    driver.start();
    cluster->run_for(wl.duration);
    cluster->quiesce(180 * kSecond);
    t = totals(*cluster);
    duration_s = static_cast<double>(cluster->sim().now()) / 1e9;
    serializable &= check_one_copy_serializability(recorder.site_logs()).ok();
  }
  state.SetLabel(engine == Engine::otp ? "otp" : "conservative");
  state.counters["cross_pct"] = cross_fraction * 100.0;
  state.counters["txn_per_s"] = goodput(t, 4, duration_s, false);
  state.counters["latency_ms"] = to_ms(t.commit_latency_ns.mean());
  state.counters["abort_pct"] =
      t.committed ? 100.0 * static_cast<double>(t.aborts) / static_cast<double>(t.committed)
                  : 0.0;
  state.counters["serializable"] = serializable ? 1.0 : 0.0;
}
BENCHMARK(BM_CrossClassRmw)
    ->ArgsProduct({{0, 1}, {0, 50, 100, 200, 400}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_TpccRemote(benchmark::State& state) {
  const auto engine = static_cast<Engine>(state.range(0));
  const double remote_fraction = static_cast<double>(state.range(1)) / 1000.0;  // per-mille
  ClusterTotals t;
  double duration_s = 0;
  bool audit_clean = true;
  bool serializable = true;
  for (auto _ : state) {
    ClusterConfig config;
    config.n_sites = 4;
    config.n_classes = 8;  // warehouses
    tpcc::Layout layout;
    config.objects_per_class = layout.objects_per_warehouse();
    config.seed = 1999;
    config.net = lan();
    auto cluster = engine == Engine::conservative
                       ? std::make_unique<Cluster>(config, conservative_factory())
                       : std::make_unique<Cluster>(config);
    HistoryRecorder recorder(*cluster);
    tpcc::MixConfig mix;
    mix.txn_per_second_per_site = 120;
    mix.duration = 2 * kSecond;
    mix.warehouse_skew_theta = 0.6;
    mix.remote_txn_fraction = remote_fraction;
    tpcc::TpccDriver driver(*cluster, layout, mix, 2024);
    driver.start();
    cluster->run_for(mix.duration);
    cluster->quiesce(180 * kSecond);
    t = totals(*cluster);
    duration_s = static_cast<double>(cluster->sim().now()) / 1e9;
    for (SiteId s = 0; s < cluster->site_count(); ++s) {
      audit_clean &= driver.audit(s).empty();
    }
    serializable &= check_one_copy_serializability(recorder.site_logs()).ok();
  }
  state.SetLabel(engine == Engine::otp ? "otp" : "conservative");
  state.counters["remote_pct"] = remote_fraction * 100.0;
  state.counters["txn_per_s"] = goodput(t, 4, duration_s, false);
  state.counters["latency_ms"] = to_ms(t.commit_latency_ns.mean());
  state.counters["abort_pct"] =
      t.committed ? 100.0 * static_cast<double>(t.aborts) / static_cast<double>(t.committed)
                  : 0.0;
  state.counters["audit_clean"] = audit_clean ? 1.0 : 0.0;
  state.counters["serializable"] = serializable ? 1.0 : 0.0;
}
BENCHMARK(BM_TpccRemote)
    ->ArgsProduct({{0, 1}, {0, 50, 100, 200}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace otpdb::bench

BENCHMARK_MAIN();
